//! Degraded-mode diagnosis: the master must survive crashed, stalled,
//! flaky and stale slaves — finishing within its deadline, reporting what
//! it could not see, and staying bit-identical to the sequential
//! reference (and to itself) for a fixed fault schedule.

use fchain::core::master::Master;
use fchain::core::slave::{MetricSample, SlaveDaemon};
use fchain::core::{
    DiagnosisReport, FChainConfig, FaultySlave, SlaveEndpoint, SlaveFault, SlaveFaultSchedule,
    SlaveStatus, ValidationProbe,
};
use fchain::metrics::{ComponentId, MetricKind};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Feeds `n` ticks of component `c` into `slave`; CPU steps up at
/// `fault_at` if given.
fn feed(slave: &SlaveDaemon, c: u32, n: u64, fault_at: Option<u64>) {
    for t in 0..n {
        for kind in MetricKind::ALL {
            let normal = 40.0 + ((t * (kind.index() as u64 + 2)) % 5) as f64;
            let value = match fault_at {
                Some(at) if kind == MetricKind::Cpu && t >= at => normal + 50.0,
                _ => normal,
            };
            slave.ingest(MetricSample {
                tick: t,
                component: ComponentId(c),
                kind,
                value,
            });
        }
    }
}

/// `n_slaves` single-component daemons; the fault lives on `faulty_slave`.
fn build_daemons(n_slaves: u32, faulty_slave: u32) -> Vec<Arc<SlaveDaemon>> {
    (0..n_slaves)
        .map(|s| {
            let daemon = Arc::new(SlaveDaemon::new(FChainConfig::default()));
            let fault_at = (s == faulty_slave).then_some(940);
            feed(&daemon, s, 1000, fault_at);
            daemon
        })
        .collect()
}

fn master_with_faults(
    daemons: &[Arc<SlaveDaemon>],
    faults: &[SlaveFault],
    config: FChainConfig,
) -> Master {
    assert_eq!(daemons.len(), faults.len());
    let mut master = Master::new(config);
    for (daemon, fault) in daemons.iter().zip(faults) {
        master.register_slave(Arc::new(FaultySlave::new(
            Arc::clone(daemon) as Arc<dyn SlaveEndpoint>,
            *fault,
        )));
    }
    master
}

fn degraded_config() -> FChainConfig {
    FChainConfig {
        slave_deadline_ms: 400,
        slave_retries: 2,
        slave_backoff_ms: 1,
        ..FChainConfig::default()
    }
}

fn mixed_faults() -> Vec<SlaveFault> {
    vec![
        SlaveFault::None,
        SlaveFault::Crash,
        SlaveFault::Stall {
            delay: Duration::from_secs(5),
        },
        SlaveFault::Transient { failures: 1 },
        SlaveFault::PartialWindow { missing_ticks: 200 },
        SlaveFault::None,
        SlaveFault::Crash,
        SlaveFault::Transient { failures: 10 },
    ]
}

/// The fault-injection stress test: eight slaves with every fault kind at
/// once. Diagnosis must return within a small multiple of the deadline
/// (the stalled slave alone would hold it for 5 s), blame the faulty
/// component, and report exactly which slaves and components it lost.
#[test]
fn stress_mixed_faults_complete_within_deadline() {
    let daemons = build_daemons(8, 0);
    let master = master_with_faults(&daemons, &mixed_faults(), degraded_config());

    let started = Instant::now();
    let report = master.on_violation(990);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "diagnosis took {elapsed:?}; the 5 s straggler was not abandoned"
    );

    // Slave 0 (healthy) holds the faulty component: diagnosis still lands.
    assert_eq!(report.pinpointed, vec![ComponentId(0)]);

    let cov = &report.coverage;
    assert_eq!(cov.slaves.len(), 8);
    assert_eq!(cov.slaves[0], SlaveStatus::Ok);
    assert_eq!(cov.slaves[1], SlaveStatus::Unreachable);
    assert_eq!(cov.slaves[2], SlaveStatus::TimedOut);
    assert_eq!(cov.slaves[3], SlaveStatus::Recovered { retries: 1 });
    assert_eq!(cov.slaves[5], SlaveStatus::Ok);
    assert_eq!(cov.slaves[6], SlaveStatus::Unreachable);
    assert_eq!(cov.slaves[7], SlaveStatus::Unreachable);
    assert_eq!(cov.unreachable_slaves, vec![1, 2, 6, 7]);
    // Each lost slave monitored exactly its own component.
    assert_eq!(
        cov.unreachable_components,
        vec![
            ComponentId(1),
            ComponentId(2),
            ComponentId(6),
            ComponentId(7)
        ]
    );
    assert_eq!(cov.coverage, 0.5);
    assert!(!cov.is_complete());
}

/// The same fault schedule twice must yield bit-identical reports.
#[test]
fn seeded_fault_schedule_is_deterministic() {
    let daemons = build_daemons(6, 2);
    let schedule = SlaveFaultSchedule::crashes(77, 0.5);
    let faults: Vec<SlaveFault> = (0..6).map(|s| schedule.fault_for(s)).collect();
    // The seeded schedule must actually exercise both outcomes.
    assert!(faults.iter().any(|f| matches!(f, SlaveFault::Crash)));
    assert!(faults.iter().any(|f| matches!(f, SlaveFault::None)));

    let run = |sequential: bool| -> DiagnosisReport {
        let master = master_with_faults(&daemons, &faults, degraded_config());
        if sequential {
            master.on_violation_sequential(990)
        } else {
            master.on_violation(990)
        }
    };
    let first = run(false);
    let second = run(false);
    assert_eq!(first, second, "same schedule, different report");
    let sequential = run(true);
    assert_eq!(
        first, sequential,
        "parallel and sequential degraded paths diverge"
    );
    assert!(!first.coverage.unreachable_slaves.is_empty());
}

/// With fault injection disabled (`SlaveFault::None` wrappers), the report
/// is bit-identical to the plain pre-change path: same findings, same
/// pinpointing, full coverage.
#[test]
fn no_fault_wrappers_match_the_plain_path() {
    let daemons = build_daemons(4, 1);

    let mut plain = Master::new(FChainConfig::default());
    for daemon in &daemons {
        plain.register_slave(Arc::clone(daemon) as Arc<dyn SlaveEndpoint>);
    }
    let faults = vec![SlaveFault::None; 4];
    let wrapped = master_with_faults(&daemons, &faults, FChainConfig::default());

    let plain_report = plain.on_violation(990);
    let wrapped_report = wrapped.on_violation(990);
    assert_eq!(plain_report, wrapped_report);
    assert_eq!(plain_report, plain.on_violation_sequential(990));
    assert_eq!(plain_report.pinpointed, vec![ComponentId(1)]);
    assert!(plain_report.coverage.is_complete());
    assert_eq!(plain_report.coverage.coverage, 1.0);
}

/// Records every component the validation probe is asked to scale, and
/// refutes all of them.
#[derive(Debug, Default)]
struct RecordingProbe {
    scaled: Vec<ComponentId>,
}

impl ValidationProbe for RecordingProbe {
    fn scale_and_observe(&mut self, component: ComponentId, _metric: MetricKind) -> bool {
        self.scaled.push(component);
        false
    }
}

/// Validation must never probe a component on an unreachable slave (there
/// is nothing to scale), and `removed_by_validation` must stay disjoint
/// from the coverage blind spot — losing a slave is not a refutation.
#[test]
fn validation_never_probes_unreachable_components() {
    let daemons = build_daemons(4, 0);
    let faults = vec![
        SlaveFault::None,
        SlaveFault::Crash,
        SlaveFault::None,
        SlaveFault::Crash,
    ];
    let master = master_with_faults(&daemons, &faults, degraded_config());

    let mut probe = RecordingProbe::default();
    let report = master.on_violation_validated(990, &mut probe);

    let blind = &report.coverage.unreachable_components;
    assert_eq!(blind, &[ComponentId(1), ComponentId(3)]);
    for c in &probe.scaled {
        assert!(
            !blind.contains(c),
            "validation probed {c:?}, which lives on an unreachable slave"
        );
    }
    for c in &report.removed_by_validation {
        assert!(
            !blind.contains(c),
            "{c:?} was both unreachable and 'refuted' by validation"
        );
    }
    // The all-refuting probe did run against the pinpointed component.
    assert_eq!(probe.scaled, vec![ComponentId(0)]);
    assert_eq!(report.removed_by_validation, vec![ComponentId(0)]);
    assert!(report.pinpointed.is_empty());
}

/// Regression for the answered-fraction definition:
/// `DiagnosisCoverage::coverage` is the fraction of *slaves* that
/// answered the fan-out, NOT the fraction of components — the two
/// diverge exactly when slaves monitor unequal component counts, and the
/// component-level view lives in `component_coverage` /
/// `unreachable_components` instead.
#[test]
fn coverage_is_a_slave_fraction_not_a_component_fraction() {
    // One healthy slave with a single (faulty) component; one crashed
    // slave holding three components.
    let small = Arc::new(SlaveDaemon::new(FChainConfig::default()));
    feed(&small, 0, 1000, Some(940));
    let big = Arc::new(SlaveDaemon::new(FChainConfig::default()));
    for c in 1..4 {
        feed(&big, c, 1000, None);
    }
    let master = master_with_faults(
        &[small, big],
        &[SlaveFault::None, SlaveFault::Crash],
        degraded_config(),
    );
    let report = master.on_violation(990);
    let cov = &report.coverage;
    assert_eq!(cov.slaves, vec![SlaveStatus::Ok, SlaveStatus::Unreachable]);
    // 1 of 2 slaves answered ...
    assert_eq!(cov.coverage, 0.5);
    // ... but only 1 of the 4 components was actually analyzed.
    assert_eq!(
        cov.unreachable_components,
        vec![ComponentId(1), ComponentId(2), ComponentId(3)]
    );
    assert_eq!(cov.component_coverage(4), 0.25);
    assert_eq!(report.pinpointed, vec![ComponentId(0)]);
}
