//! Robustness and invariant integration tests: the whole pipeline under
//! hostile or randomized input, plus cross-run simulator invariants.

use fchain::core::{CaseData, ComponentCase, FChain, Localizer};
use fchain::metrics::{ComponentId, MetricKind, TimeSeries};
use fchain::sim::{AppKind, FaultKind, RunConfig, Simulator};
use proptest::prelude::*;

fn case_from_series(per_component: Vec<Vec<f64>>) -> CaseData {
    let n = per_component.first().map_or(0, Vec::len) as u64;
    CaseData {
        violation_at: n.saturating_sub(1),
        lookback: 100,
        components: per_component
            .into_iter()
            .enumerate()
            .map(|(i, cpu)| {
                let len = cpu.len();
                let mut metrics: Vec<TimeSeries> = (0..6)
                    .map(|k| {
                        TimeSeries::from_samples(
                            0,
                            (0..len)
                                .map(|t| 10.0 + ((t * (k + 2)) % 4) as f64)
                                .collect(),
                        )
                    })
                    .collect();
                metrics[MetricKind::Cpu.index()] = TimeSeries::from_samples(0, cpu);
                ComponentCase {
                    id: ComponentId(i as u32),
                    name: format!("c{i}"),
                    metrics,
                }
            })
            .collect(),
        known_topology: None,
        discovered_deps: None,
        frontend: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// FChain never panics and never blames a component outside the case,
    /// no matter what the metric data looks like.
    #[test]
    fn diagnosis_is_total_on_arbitrary_data(
        series in proptest::collection::vec(
            proptest::collection::vec(-1e5f64..1e5, 300..500),
            1..4,
        )
    ) {
        let len = series.iter().map(Vec::len).min().unwrap();
        let trimmed: Vec<Vec<f64>> = series.into_iter().map(|mut s| { s.truncate(len); s }).collect();
        let n_components = trimmed.len();
        let case = case_from_series(trimmed);
        let report = FChain::default().diagnose(&case);
        for c in &report.pinpointed {
            prop_assert!((c.index()) < n_components);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Simulator invariants hold across arbitrary seeds: CPU stays within
    /// [0, 100], nothing is negative, the violation follows the fault, and
    /// packets are plausibly timestamped.
    #[test]
    fn simulator_invariants(seed in 0u64..10_000) {
        let run = Simulator::new(
            RunConfig::new(AppKind::Rubis, FaultKind::MemLeak, seed).with_duration(900),
        )
        .run();
        for c in 0..run.component_count() as u32 {
            let id = ComponentId(c);
            for kind in MetricKind::ALL {
                for (_, v) in run.metric(id, kind).iter() {
                    prop_assert!(v.is_finite());
                    prop_assert!(v >= 0.0, "{kind} negative: {v}");
                    if kind == MetricKind::Cpu {
                        prop_assert!(v <= 100.0, "cpu over 100: {v}");
                    }
                }
            }
        }
        if let Some(t_v) = run.violation_at {
            prop_assert!(t_v >= run.fault.start);
        }
        for p in &run.packets {
            prop_assert!(p.tick < 900);
            prop_assert!(p.src != p.dst);
        }
    }
}

#[test]
fn diagnosing_an_all_constant_case_finds_nothing() {
    let case = case_from_series(vec![vec![5.0; 400], vec![7.0; 400]]);
    let report = FChain::default().diagnose(&case);
    assert!(report.pinpointed.is_empty());
}

#[test]
fn single_component_application_works() {
    // Degenerate topology: one component, one fault.
    let mut cpu: Vec<f64> = (0..600).map(|t| 20.0 + ((t * 3) % 6) as f64).collect();
    for v in cpu.iter_mut().skip(550) {
        *v += 60.0;
    }
    let case = case_from_series(vec![cpu]);
    let report = FChain::default().diagnose(&case);
    assert_eq!(report.pinpointed, vec![ComponentId(0)]);
}

#[test]
fn zero_length_lookback_falls_back_to_config() {
    let mut cpu: Vec<f64> = (0..600).map(|t| 20.0 + ((t * 3) % 6) as f64).collect();
    for v in cpu.iter_mut().skip(550) {
        *v += 60.0;
    }
    let mut case = case_from_series(vec![cpu]);
    case.lookback = 0; // "unspecified" — the config's default W applies
    let report = FChain::default().diagnose(&case);
    assert_eq!(report.pinpointed, vec![ComponentId(0)]);
}

#[test]
fn one_tick_clock_skew_does_not_change_the_diagnosis() {
    // §II.B footnote: NTP keeps hosts within milliseconds and propagation
    // delays are several seconds, so FChain tolerates small skews. At the
    // 1 Hz sampling granularity the worst observable skew is one tick:
    // shift one non-faulty host's series by a tick and the culprit must
    // not change.
    use fchain::core::CaseData;
    use fchain::eval::case_from_run;
    use fchain::sim::Simulator as Sim;

    let run = Sim::new(RunConfig::new(AppKind::Rubis, FaultKind::MemLeak, 70)).run();
    let case = case_from_run(&run, 100).expect("violation");
    let baseline = FChain::default().diagnose(&case).pinpointed;
    assert_eq!(baseline, run.fault.targets);

    // Skew app1 (component 1) one tick late.
    let mut skewed: CaseData = case.clone();
    for metric in &mut skewed.components[1].metrics {
        let mut values = metric.values().to_vec();
        values.insert(0, values[0]);
        values.pop();
        *metric = TimeSeries::from_samples(metric.start(), values);
    }
    let shifted = FChain::default().diagnose(&skewed).pinpointed;
    assert_eq!(shifted, baseline, "1-tick skew flipped the diagnosis");
}

#[test]
fn localize_never_reports_duplicates() {
    for seed in 0..6 {
        let run = Simulator::new(
            RunConfig::new(AppKind::Hadoop, FaultKind::ConcurrentMemLeak, seed).with_duration(1800),
        )
        .run();
        let Some(case) = fchain::eval::case_from_run(&run, 100) else {
            continue;
        };
        let pinpointed = FChain::default().localize(&case);
        let mut dedup = pinpointed.clone();
        dedup.dedup();
        assert_eq!(pinpointed, dedup, "duplicates in {pinpointed:?}");
    }
}
