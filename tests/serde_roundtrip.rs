//! Serialization integration: every data structure that crosses a process
//! boundary (slave → master, run archives, result dumps) round-trips
//! through serde_json unchanged.

use fchain::core::{CaseData, DiagnosisReport, FChain, FChainConfig};
use fchain::deps::DependencyGraph;
use fchain::eval::{case_from_run, Counts, RocCurve};
use fchain::metrics::{ComponentId, MetricKind, TimeSeries};
use fchain::sim::{AppKind, FaultKind, RunConfig, RunRecord, Simulator};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

fn sample_run() -> RunRecord {
    Simulator::new(RunConfig::new(AppKind::Rubis, FaultKind::CpuHog, 3).with_duration(900)).run()
}

#[test]
fn run_record_roundtrips() {
    let run = sample_run();
    let back: RunRecord = roundtrip(&run);
    assert_eq!(back.fault, run.fault);
    assert_eq!(back.violation_at, run.violation_at);
    assert_eq!(back.packets, run.packets);
    assert_eq!(
        back.metric(ComponentId(3), MetricKind::Cpu).values(),
        run.metric(ComponentId(3), MetricKind::Cpu).values()
    );
}

#[test]
fn case_and_report_roundtrip_and_rediagnose_identically() {
    let run = sample_run();
    let case = case_from_run(&run, 100).expect("violation");
    let back: CaseData = roundtrip(&case);
    let fchain = FChain::default();
    let original: DiagnosisReport = fchain.diagnose(&case);
    let replayed = fchain.diagnose(&back);
    assert_eq!(original.pinpointed, replayed.pinpointed);
    assert_eq!(original.verdict, replayed.verdict);

    let report_back: DiagnosisReport = roundtrip(&original);
    assert_eq!(report_back.pinpointed, original.pinpointed);
    assert_eq!(
        report_back.propagation_chain(),
        original.propagation_chain()
    );
}

#[test]
fn config_roundtrips_with_every_knob() {
    let config = FChainConfig {
        lookback: 500,
        burst_window: 25,
        concurrency_threshold: 5,
        adaptive_lookback: true,
        adaptive_smoothing: true,
        ..FChainConfig::default()
    };
    let back: FChainConfig = roundtrip(&config);
    assert_eq!(back, config);
}

#[test]
fn dependency_graph_roundtrips() {
    let g = DependencyGraph::from_edges([
        (ComponentId(0), ComponentId(1)),
        (ComponentId(1), ComponentId(2)),
    ]);
    let back: DependencyGraph = roundtrip(&g);
    assert_eq!(back, g);
    assert!(back.has_directed_path(ComponentId(0), ComponentId(2)));
}

#[test]
fn scores_and_curves_roundtrip() {
    let counts = Counts {
        tp: 9,
        fp: 2,
        fn_: 1,
    };
    assert_eq!(roundtrip(&counts), counts);
    let curve = RocCurve::from_counts([
        (0.1, counts),
        (
            0.5,
            Counts {
                tp: 5,
                fp: 0,
                fn_: 5,
            },
        ),
    ]);
    let back: RocCurve = roundtrip(&curve);
    assert_eq!(back, curve);
    assert!((back.auc() - curve.auc()).abs() < 1e-12);
}

#[test]
fn time_series_roundtrips_with_anchor() {
    let ts = TimeSeries::from_samples(42, vec![1.5, 2.5, 3.5]);
    let back: TimeSeries = roundtrip(&ts);
    assert_eq!(back, ts);
    assert_eq!(back.at(43), Some(2.5));
}
