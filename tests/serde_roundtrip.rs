//! Serialization integration: every data structure that crosses a process
//! boundary (slave → master, run archives, result dumps) round-trips
//! through serde_json unchanged.

use fchain::core::{CaseData, DiagnosisReport, FChain, FChainConfig, FleetConfig};
use fchain::deps::DependencyGraph;
use fchain::eval::{case_from_run, Counts, RocCurve};
use fchain::metrics::{ComponentId, MetricKind, TimeSeries};
use fchain::sim::{AppKind, FaultKind, RunConfig, RunRecord, Simulator};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

fn sample_run() -> RunRecord {
    Simulator::new(RunConfig::new(AppKind::Rubis, FaultKind::CpuHog, 3).with_duration(900)).run()
}

#[test]
fn run_record_roundtrips() {
    let run = sample_run();
    let back: RunRecord = roundtrip(&run);
    assert_eq!(back.fault, run.fault);
    assert_eq!(back.violation_at, run.violation_at);
    assert_eq!(back.packets, run.packets);
    assert_eq!(
        back.metric(ComponentId(3), MetricKind::Cpu).values(),
        run.metric(ComponentId(3), MetricKind::Cpu).values()
    );
}

#[test]
fn case_and_report_roundtrip_and_rediagnose_identically() {
    let run = sample_run();
    let case = case_from_run(&run, 100).expect("violation");
    let back: CaseData = roundtrip(&case);
    let fchain = FChain::default();
    let original: DiagnosisReport = fchain.diagnose(&case);
    let replayed = fchain.diagnose(&back);
    assert_eq!(original.pinpointed, replayed.pinpointed);
    assert_eq!(original.verdict, replayed.verdict);

    let report_back: DiagnosisReport = roundtrip(&original);
    assert_eq!(report_back.pinpointed, original.pinpointed);
    assert_eq!(
        report_back.propagation_chain(),
        original.propagation_chain()
    );
}

#[test]
fn config_roundtrips_with_every_knob() {
    let config = FChainConfig {
        lookback: 500,
        burst_window: 25,
        concurrency_threshold: 5,
        adaptive_lookback: true,
        adaptive_smoothing: true,
        ..FChainConfig::default()
    };
    let back: FChainConfig = roundtrip(&config);
    assert_eq!(back, config);
}

#[test]
fn fleet_config_roundtrips_and_missing_field_defaults() {
    let config = FChainConfig {
        fleet: FleetConfig {
            max_tenants: 16,
            scheduler_seed: 99,
            tenant_deadline_ms: 750,
        },
        ..FChainConfig::default()
    };
    let back: FChainConfig = roundtrip(&config);
    assert_eq!(back, config);
    assert_eq!(back.fleet.max_tenants, 16);
    assert_eq!(back.fleet.scheduler_seed, 99);
    assert_eq!(back.fleet.tenant_deadline_ms, 750);

    // Configs archived before the fleet layer existed carry no "fleet"
    // key at all: drop it from the serialized tree and the deserializer
    // must land on the defaults, under which a fleet of one behaves
    // exactly like the single-app stack.
    let mut tree: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&config).expect("serialize"))
            .expect("config JSON parses");
    let serde_json::Value::Map(entries) = &mut tree else {
        panic!("config must serialize to a map");
    };
    let before = entries.len();
    entries.retain(|(k, _)| k.as_str() != Some("fleet"));
    assert_eq!(entries.len(), before - 1, "fleet field not serialized");
    let legacy: FChainConfig =
        serde_json::from_str(&serde_json::to_string(&tree).expect("serialize"))
            .expect("legacy config still loads");
    assert_eq!(legacy.fleet, FleetConfig::default());
    assert_eq!(legacy.lookback, config.lookback);

    // A partially-specified fleet map fills the rest with defaults.
    let partial: FleetConfig =
        serde_json::from_str("{\"tenant_deadline_ms\":120}").expect("partial fleet map");
    assert_eq!(partial.tenant_deadline_ms, 120);
    assert_eq!(partial.max_tenants, 0);
    assert_eq!(partial.scheduler_seed, 0);
}

#[test]
fn dependency_graph_roundtrips() {
    let g = DependencyGraph::from_edges([
        (ComponentId(0), ComponentId(1)),
        (ComponentId(1), ComponentId(2)),
    ]);
    let back: DependencyGraph = roundtrip(&g);
    assert_eq!(back, g);
    assert!(back.has_directed_path(ComponentId(0), ComponentId(2)));
}

#[test]
fn scores_and_curves_roundtrip() {
    let counts = Counts {
        tp: 9,
        fp: 2,
        fn_: 1,
    };
    assert_eq!(roundtrip(&counts), counts);
    let curve = RocCurve::from_counts([
        (0.1, counts),
        (
            0.5,
            Counts {
                tp: 5,
                fp: 0,
                fn_: 5,
            },
        ),
    ]);
    let back: RocCurve = roundtrip(&curve);
    assert_eq!(back, curve);
    assert!((back.auc() - curve.auc()).abs() < 1e-12);
}

#[test]
fn time_series_roundtrips_with_anchor() {
    let ts = TimeSeries::from_samples(42, vec![1.5, 2.5, 3.5]);
    let back: TimeSeries = roundtrip(&ts);
    assert_eq!(back, ts);
    assert_eq!(back.at(43), Some(2.5));
}
