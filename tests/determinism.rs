//! Parallel/sequential parity: the sharded, multi-threaded diagnosis path
//! (parallel `SlaveDaemon::analyze_all` + parallel master collection) must
//! produce bit-identical reports to the single-threaded reference for the
//! same seeded campaign cases.

use fchain::core::master::Master;
use fchain::core::slave::{MetricSample, SlaveDaemon};
use fchain::core::{FChainConfig, FaultySlave, SlaveEndpoint, SlaveFault};
use fchain::eval::case_from_run;
use fchain::metrics::MetricKind;
use fchain::sim::{AppKind, FaultKind, RunConfig, Simulator};
use std::sync::Arc;

/// Simulates one seeded run, streams every component's metrics into
/// per-host slave daemons (two hosts, components split round-robin, so the
/// master-level fan-out is exercised too), and returns the wired master
/// plus the violation tick.
fn master_from_seeded_run(app: AppKind, fault: FaultKind, seed: u64) -> Option<(Master, u64)> {
    master_from_seeded_run_wrapped(app, fault, seed, false)
}

/// Like [`master_from_seeded_run`], optionally wrapping every slave in a
/// no-op [`FaultySlave`] — the endpoint indirection with fault injection
/// disabled must be invisible in the reports.
fn master_from_seeded_run_wrapped(
    app: AppKind,
    fault: FaultKind,
    seed: u64,
    wrap: bool,
) -> Option<(Master, u64)> {
    let run = Simulator::new(RunConfig::new(app, fault, seed)).run();
    let case = case_from_run(&run, 100)?;
    let hosts: Vec<Arc<SlaveDaemon>> = (0..2)
        .map(|_| Arc::new(SlaveDaemon::new(FChainConfig::default())))
        .collect();
    for (i, component) in case.components.iter().enumerate() {
        let host = &hosts[i % hosts.len()];
        for kind in MetricKind::ALL {
            for (tick, value) in component.metric(kind).iter() {
                host.ingest(MetricSample {
                    tick,
                    component: component.id,
                    kind,
                    value,
                });
            }
        }
    }
    let mut master = Master::new(FChainConfig::default());
    for host in hosts {
        if wrap {
            master.register_slave(Arc::new(FaultySlave::new(
                host as Arc<dyn SlaveEndpoint>,
                SlaveFault::None,
            )));
        } else {
            master.register_slave(host);
        }
    }
    if let Some(deps) = case.discovered_deps.clone() {
        master.set_dependencies(deps);
    }
    Some((master, case.violation_at))
}

fn assert_parity(app: AppKind, fault: FaultKind, seeds: &[u64]) {
    let mut compared = 0;
    for &seed in seeds {
        let Some((master, violation_at)) = master_from_seeded_run(app, fault, seed) else {
            continue;
        };
        let parallel = master.on_violation(violation_at);
        let sequential = master.on_violation_sequential(violation_at);
        assert_eq!(
            parallel, sequential,
            "{app:?}/{fault:?} seed {seed}: parallel and sequential reports diverge"
        );
        // Re-running the parallel path must also be stable with itself.
        assert_eq!(parallel, master.on_violation(violation_at));
        compared += 1;
    }
    assert!(
        compared >= 3,
        "{app:?}/{fault:?}: only {compared} seeded cases produced a violation"
    );
}

#[test]
fn rubis_reports_are_identical_across_paths() {
    assert_parity(AppKind::Rubis, FaultKind::CpuHog, &[900, 901, 902, 903]);
}

#[test]
fn hadoop_reports_are_identical_across_paths() {
    assert_parity(
        AppKind::Hadoop,
        FaultKind::ConcurrentMemLeak,
        &[40, 41, 42, 43],
    );
}

#[test]
fn systems_reports_are_identical_across_paths() {
    assert_parity(AppKind::SystemS, FaultKind::MemLeak, &[500, 501, 502, 503]);
}

/// With fault injection disabled, the `FaultySlave`-wrapped master must
/// produce bit-identical reports to the plain one, on both paths.
#[test]
fn disabled_fault_injection_is_invisible() {
    let mut compared = 0;
    for &seed in &[900u64, 901, 902, 903] {
        let Some((plain, violation_at)) =
            master_from_seeded_run(AppKind::Rubis, FaultKind::CpuHog, seed)
        else {
            continue;
        };
        let (wrapped, _) =
            master_from_seeded_run_wrapped(AppKind::Rubis, FaultKind::CpuHog, seed, true)
                .expect("same seed must produce the same case");
        let reference = plain.on_violation(violation_at);
        assert_eq!(
            reference,
            wrapped.on_violation(violation_at),
            "seed {seed}: a no-op FaultySlave changed the parallel report"
        );
        assert_eq!(
            reference,
            wrapped.on_violation_sequential(violation_at),
            "seed {seed}: a no-op FaultySlave changed the sequential report"
        );
        compared += 1;
    }
    assert!(compared >= 3, "only {compared} seeded cases fired");
}
