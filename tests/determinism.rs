//! Parallel/sequential and batch/streaming parity: the sharded,
//! multi-threaded diagnosis path (parallel `SlaveDaemon::analyze_all` +
//! parallel master collection) must produce bit-identical reports to the
//! single-threaded reference for the same seeded campaign cases, and the
//! streaming analysis engine must produce bit-identical findings to the
//! batch reference — over seeded simulator campaigns and over adversarial
//! synthetic streams (gaps, duplicates, out-of-order ticks, outages that
//! reset the series, injected step faults).

use fchain::core::master::Master;
use fchain::core::slave::{MetricSample, SlaveDaemon};
use fchain::core::{
    AnalysisEngine, FChainConfig, FaultySlave, FleetMaster, FleetViolation, SlaveEndpoint,
    SlaveFault, TenantSlave,
};
use fchain::eval::case_from_run;
use fchain::metrics::{AppId, ComponentId, MetricKind};
use fchain::sim::{AppKind, FaultKind, RunConfig, Simulator};
use proptest::prelude::*;
use std::sync::Arc;

/// The default config with the given engine selected.
fn engine_config(engine: AnalysisEngine) -> FChainConfig {
    FChainConfig {
        engine,
        ..FChainConfig::default()
    }
}

/// Simulates one seeded run, streams every component's metrics into
/// per-host slave daemons (two hosts, components split round-robin, so the
/// master-level fan-out is exercised too), and returns the wired master
/// plus the violation tick.
fn master_from_seeded_run(app: AppKind, fault: FaultKind, seed: u64) -> Option<(Master, u64)> {
    master_from_seeded_run_with(app, fault, seed, false, &FChainConfig::default())
}

/// Like [`master_from_seeded_run`], optionally wrapping every slave in a
/// no-op [`FaultySlave`] — the endpoint indirection with fault injection
/// disabled must be invisible in the reports — and with an explicit
/// config so the analysis engine can be selected.
fn master_from_seeded_run_with(
    app: AppKind,
    fault: FaultKind,
    seed: u64,
    wrap: bool,
    config: &FChainConfig,
) -> Option<(Master, u64)> {
    let run = Simulator::new(RunConfig::new(app, fault, seed)).run();
    let case = case_from_run(&run, 100)?;
    let hosts: Vec<Arc<SlaveDaemon>> = (0..2)
        .map(|_| Arc::new(SlaveDaemon::new(config.clone())))
        .collect();
    for (i, component) in case.components.iter().enumerate() {
        let host = &hosts[i % hosts.len()];
        for kind in MetricKind::ALL {
            for (tick, value) in component.metric(kind).iter() {
                host.ingest(MetricSample {
                    tick,
                    component: component.id,
                    kind,
                    value,
                });
            }
        }
    }
    let mut master = Master::new(config.clone());
    for host in hosts {
        if wrap {
            master.register_slave(Arc::new(FaultySlave::new(
                host as Arc<dyn SlaveEndpoint>,
                SlaveFault::None,
            )));
        } else {
            master.register_slave(host);
        }
    }
    if let Some(deps) = case.discovered_deps.clone() {
        master.set_dependencies(deps);
    }
    Some((master, case.violation_at))
}

/// Builds a [`FleetMaster`] with a single tenant wired exactly like
/// [`master_from_seeded_run_with`] wires its `Master`: two shared-pool
/// hosts, components split round-robin, every slave registered as a
/// tenant-scoped view.
fn fleet_from_seeded_run(
    app: AppKind,
    fault: FaultKind,
    seed: u64,
    config: &FChainConfig,
) -> Option<(FleetMaster, AppId, u64)> {
    let run = Simulator::new(RunConfig::new(app, fault, seed)).run();
    let case = case_from_run(&run, 100)?;
    let mut fleet = FleetMaster::new(config.clone());
    let tenant = fleet.add_tenant("only");
    let hosts: Vec<Arc<SlaveDaemon>> = (0..2)
        .map(|_| Arc::new(SlaveDaemon::new(config.clone())))
        .collect();
    for (i, component) in case.components.iter().enumerate() {
        let host = &hosts[i % hosts.len()];
        for kind in MetricKind::ALL {
            for (tick, value) in component.metric(kind).iter() {
                host.ingest_for(
                    tenant,
                    MetricSample {
                        tick,
                        component: component.id,
                        kind,
                        value,
                    },
                );
            }
        }
    }
    for host in hosts {
        fleet.register_slave(tenant, Arc::new(TenantSlave::new(host, tenant)));
    }
    if let Some(deps) = case.discovered_deps.clone() {
        fleet.set_dependencies(tenant, deps);
    }
    Some((fleet, tenant, case.violation_at))
}

fn assert_parity(app: AppKind, fault: FaultKind, seeds: &[u64]) {
    let mut compared = 0;
    for &seed in seeds {
        let Some((master, violation_at)) = master_from_seeded_run(app, fault, seed) else {
            continue;
        };
        let parallel = master.on_violation(violation_at);
        let sequential = master.on_violation_sequential(violation_at);
        assert_eq!(
            parallel, sequential,
            "{app:?}/{fault:?} seed {seed}: parallel and sequential reports diverge"
        );
        // Re-running the parallel path must also be stable with itself.
        assert_eq!(parallel, master.on_violation(violation_at));
        compared += 1;
    }
    assert!(
        compared >= 3,
        "{app:?}/{fault:?}: only {compared} seeded cases produced a violation"
    );
}

#[test]
fn rubis_reports_are_identical_across_paths() {
    assert_parity(AppKind::Rubis, FaultKind::CpuHog, &[900, 901, 902, 903]);
}

#[test]
fn hadoop_reports_are_identical_across_paths() {
    assert_parity(
        AppKind::Hadoop,
        FaultKind::ConcurrentMemLeak,
        &[40, 41, 42, 43],
    );
}

#[test]
fn systems_reports_are_identical_across_paths() {
    assert_parity(AppKind::SystemS, FaultKind::MemLeak, &[500, 501, 502, 503]);
}

/// With fault injection disabled, the `FaultySlave`-wrapped master must
/// produce bit-identical reports to the plain one, on both paths.
#[test]
fn disabled_fault_injection_is_invisible() {
    let mut compared = 0;
    for &seed in &[900u64, 901, 902, 903] {
        let Some((plain, violation_at)) =
            master_from_seeded_run(AppKind::Rubis, FaultKind::CpuHog, seed)
        else {
            continue;
        };
        let (wrapped, _) = master_from_seeded_run_with(
            AppKind::Rubis,
            FaultKind::CpuHog,
            seed,
            true,
            &FChainConfig::default(),
        )
        .expect("same seed must produce the same case");
        let reference = plain.on_violation(violation_at);
        assert_eq!(
            reference,
            wrapped.on_violation(violation_at),
            "seed {seed}: a no-op FaultySlave changed the parallel report"
        );
        assert_eq!(
            reference,
            wrapped.on_violation_sequential(violation_at),
            "seed {seed}: a no-op FaultySlave changed the sequential report"
        );
        compared += 1;
    }
    assert!(compared >= 3, "only {compared} seeded cases fired");
}

/// The streaming engine must produce bit-identical reports to the batch
/// reference on full seeded campaigns (daemon ingest → master fan-out →
/// pinpointing), with the engine choice correctly stamped on each report.
#[test]
fn batch_and_streaming_engines_agree_on_seeded_runs() {
    let cases = [
        (AppKind::Rubis, FaultKind::CpuHog, 900u64),
        (AppKind::Rubis, FaultKind::CpuHog, 901),
        (AppKind::Hadoop, FaultKind::ConcurrentMemLeak, 40),
        (AppKind::SystemS, FaultKind::MemLeak, 500),
    ];
    let mut compared = 0;
    for (app, fault, seed) in cases {
        let batch_cfg = engine_config(AnalysisEngine::Batch);
        let streaming_cfg = engine_config(AnalysisEngine::Streaming);
        let Some((batch, violation_at)) =
            master_from_seeded_run_with(app, fault, seed, false, &batch_cfg)
        else {
            continue;
        };
        let (streaming, _) = master_from_seeded_run_with(app, fault, seed, false, &streaming_cfg)
            .expect("same seed must produce the same case");
        let batch_report = batch.on_violation(violation_at);
        let streaming_report = streaming.on_violation(violation_at);
        // `DiagnosisReport::eq` ignores the provenance fields, so this is
        // exactly "same verdict, same pinpointing, same findings, bit for
        // bit".
        assert_eq!(
            batch_report, streaming_report,
            "{app:?}/{fault:?} seed {seed}: engines diverge"
        );
        assert_eq!(batch_report.engine, AnalysisEngine::Batch);
        assert_eq!(streaming_report.engine, AnalysisEngine::Streaming);
        compared += 1;
    }
    assert!(compared >= 3, "only {compared} seeded cases fired");
}

/// A fleet of one tenant must produce bit-identical diagnosis payloads
/// to the single-app `Master` wrapper — same golden campaign cases, both
/// engines, both drain paths. This is the contract that lets the
/// single-app API stay a thin wrapper over the fleet layer.
#[test]
fn fleet_of_one_matches_the_single_app_master() {
    let cases = [
        (AppKind::Rubis, FaultKind::CpuHog, 900u64),
        (AppKind::Rubis, FaultKind::CpuHog, 901),
        (AppKind::Hadoop, FaultKind::ConcurrentMemLeak, 40),
        (AppKind::SystemS, FaultKind::MemLeak, 500),
    ];
    let mut compared = 0;
    for engine in [AnalysisEngine::Batch, AnalysisEngine::Streaming] {
        let config = engine_config(engine);
        for (app, fault, seed) in cases {
            let Some((master, violation_at)) =
                master_from_seeded_run_with(app, fault, seed, false, &config)
            else {
                continue;
            };
            let (fleet, tenant, fleet_violation_at) =
                fleet_from_seeded_run(app, fault, seed, &config)
                    .expect("same seed must produce the same case");
            assert_eq!(violation_at, fleet_violation_at);
            let violation = FleetViolation {
                app: tenant,
                violation_at,
            };
            let drained = fleet.on_violations(&[violation]);
            assert_eq!(drained.len(), 1);
            assert_eq!(drained[0].app, tenant);
            // `DiagnosisReport::eq` ignores provenance, so this is "same
            // verdict, same pinpointing, same findings, bit for bit".
            assert_eq!(
                master.on_violation(violation_at),
                drained[0].report,
                "{app:?}/{fault:?} seed {seed} ({engine:?}): fleet drain diverges"
            );
            let sequential = fleet.on_violations_sequential(&[violation]);
            assert_eq!(
                master.on_violation_sequential(violation_at),
                sequential[0].report,
                "{app:?}/{fault:?} seed {seed} ({engine:?}): sequential drain diverges"
            );
            compared += 1;
        }
    }
    assert!(compared >= 6, "only {compared} seeded cases fired");
}

/// The ensemble pinpointing stage is opt-in: with `ensemble.enabled =
/// false` (the default) the diagnosis path must be bit-identical to the
/// plain default config no matter how the other ensemble knobs are set —
/// the stage is fully gated, so pre-ensemble reports are pinned. With the
/// stage enabled, reports must still be deterministic across the
/// parallel and sequential drain paths.
#[test]
fn disabled_ensemble_is_invisible_and_enabled_is_deterministic() {
    let cases = [
        (AppKind::Rubis, FaultKind::CpuHog, 900u64),
        (AppKind::Hadoop, FaultKind::ConcurrentMemLeak, 40),
        (AppKind::SystemS, FaultKind::MemLeak, 500),
    ];
    assert!(
        !FChainConfig::default().ensemble.enabled,
        "the ensemble stage must stay opt-in"
    );
    let mut compared = 0;
    for (app, fault, seed) in cases {
        let Some((reference, violation_at)) = master_from_seeded_run(app, fault, seed) else {
            continue;
        };
        // Disabled stage, every other knob scrambled: still bit-identical.
        let mut scrambled = FChainConfig::default();
        scrambled.ensemble.confidence_floor = 99.0;
        scrambled.ensemble.coverage_penalty = 17.0;
        scrambled.ensemble.centrality_widening = false;
        scrambled.ensemble.silent_hole = false;
        let (gated, _) = master_from_seeded_run_with(app, fault, seed, false, &scrambled)
            .expect("same seed must produce the same case");
        assert_eq!(
            reference.on_violation(violation_at),
            gated.on_violation(violation_at),
            "{app:?}/{fault:?} seed {seed}: a disabled ensemble changed the report"
        );
        // Enabled stage: parallel and sequential drains stay identical.
        let mut enabled = FChainConfig::default();
        enabled.ensemble.enabled = true;
        let (ensembled, _) = master_from_seeded_run_with(app, fault, seed, false, &enabled)
            .expect("same seed must produce the same case");
        assert_eq!(
            ensembled.on_violation(violation_at),
            ensembled.on_violation_sequential(violation_at),
            "{app:?}/{fault:?} seed {seed}: ensemble drain paths diverge"
        );
        compared += 1;
    }
    assert!(compared >= 2, "only {compared} seeded cases fired");
}

/// One synthetic metric stream with adversarial ingest conditions: a
/// modular baseline, an optional injected step fault, a dropped tick
/// range (bridged gap, or a series-resetting outage when long enough) and
/// periodic duplicate + out-of-order replays.
#[derive(Debug, Clone)]
struct StreamPlan {
    base: f64,
    modulus: u64,
    fault_at: Option<u64>,
    fault_delta: f64,
    gap_start: u64,
    gap_len: u64,
    dup_every: u64,
}

impl StreamPlan {
    fn value_at(&self, t: u64, kind: MetricKind) -> f64 {
        let normal = self.base + ((t * (kind.index() as u64 + 2)) % self.modulus) as f64;
        match self.fault_at {
            Some(at) if t >= at && kind == MetricKind::Cpu => normal + self.fault_delta,
            _ => normal,
        }
    }

    fn feed(&self, daemon: &SlaveDaemon, component: ComponentId, n: u64) {
        for kind in MetricKind::ALL {
            for t in 0..n {
                if t >= self.gap_start && t < self.gap_start + self.gap_len {
                    continue;
                }
                let mk = |tick: u64| MetricSample {
                    tick,
                    component,
                    kind,
                    value: self.value_at(tick, kind),
                };
                daemon.ingest(mk(t));
                if self.dup_every > 0 && t % self.dup_every == 0 {
                    daemon.ingest(mk(t)); // duplicate tick: dropped
                    if t > 0 {
                        daemon.ingest(mk(t - 1)); // out-of-order: dropped
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over arbitrary adversarial streams the two engines' daemon
    /// analyses are bit-identical — at the live edge (where the streaming
    /// engine reads its sketch-backed floor and fast screen), with a
    /// trimmed tail, and mid-history.
    #[test]
    fn engines_bit_identical_over_adversarial_streams(
        n in 260u64..420,
        base in 10.0f64..80.0,
        modulus in 2u64..7,
        fault in proptest::option::of((180u64..240, 20.0f64..60.0)),
        gap_start in 100u64..200,
        // Up to 40 dropped ticks: beyond the 30-tick bridge limit this
        // exercises the series-reset path too.
        gap_len in 0u64..40,
        dup_every in 0u64..9,
    ) {
        let plans = [
            StreamPlan {
                base,
                modulus,
                fault_at: fault.map(|(at, _)| at),
                fault_delta: fault.map(|(_, d)| d).unwrap_or(0.0),
                gap_start,
                gap_len,
                dup_every,
            },
            // A second, clean component without ingest anomalies.
            StreamPlan {
                base: 40.0,
                modulus: 5,
                fault_at: None,
                fault_delta: 0.0,
                gap_start: 0,
                gap_len: 0,
                dup_every: 0,
            },
        ];
        let batch = SlaveDaemon::new(engine_config(AnalysisEngine::Batch));
        let streaming = SlaveDaemon::new(engine_config(AnalysisEngine::Streaming));
        for daemon in [&batch, &streaming] {
            for (i, plan) in plans.iter().enumerate() {
                plan.feed(daemon, ComponentId(i as u32), n);
            }
        }
        prop_assert_eq!(batch.monitored_components(), streaming.monitored_components());
        for violation_at in [n - 1, n.saturating_sub(7), n / 2] {
            prop_assert_eq!(
                batch.analyze_all_sequential(violation_at),
                streaming.analyze_all_sequential(violation_at),
                "engines diverge at violation tick {}", violation_at
            );
        }
    }
}
