//! The paper's headline claims as executable assertions, at reduced scale
//! (5–6 runs per campaign) so the suite stays fast. The full-scale
//! versions live in the bench targets.

use fchain::baselines::FixedFiltering;
use fchain::core::{FChain, FChainConfig};
use fchain::eval::{Campaign, Counts, OracleProbe};
use fchain::sim::{AppKind, FaultKind};

fn campaign(app: AppKind, fault: FaultKind, seed: u64, lookback: u64) -> Campaign {
    Campaign {
        app,
        fault,
        runs: 6,
        base_seed: seed,
        duration: 3600,
        lookback,
    }
}

fn f1(c: &Counts) -> f64 {
    let (p, r) = (c.precision(), c.recall());
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// §III.D / Fig. 11: online validation removes false alarms on the
/// hardest fault and never manufactures recall.
#[test]
fn validation_raises_bottleneck_precision() {
    let c = campaign(AppKind::SystemS, FaultKind::Bottleneck, 8800, 100);
    let fchain = FChain::default();
    let plain = c.evaluate(&[&fchain]);
    let validated = c.evaluate_with(&[&fchain], |_s, case, run| {
        let mut probe = OracleProbe::new(&run.oracle);
        FChain::default()
            .diagnose_validated(case, &mut probe)
            .pinpointed
    });
    let (p, v) = (plain[0].counts, validated[0].counts);
    assert!(
        v.precision() > p.precision(),
        "validation must raise precision: {p} -> {v}"
    );
    assert!(v.fp < p.fp, "validation must remove false positives");
    assert!(
        v.recall() <= p.recall() + 1e-9,
        "validation cannot invent recall"
    );
}

/// Fig. 12: FChain's burst-adaptive threshold beats every fixed threshold
/// on the LBBug case.
#[test]
fn burst_adaptive_threshold_beats_fixed_thresholds() {
    let c = campaign(AppKind::Rubis, FaultKind::LbBug, 8900, 100);
    let fchain = FChain::default();
    let f02 = FixedFiltering::new(0.2);
    let f1s = FixedFiltering::new(1.0);
    let f4 = FixedFiltering::new(4.0);
    let results = c.evaluate(&[&fchain, &f02, &f1s, &f4]);
    let fchain_f1 = f1(&results[0].counts);
    for r in &results[1..] {
        assert!(
            fchain_f1 >= f1(&r.counts),
            "FChain ({}) must dominate {} ({})",
            results[0].counts,
            r.scheme,
            r.counts
        );
    }
}

/// Table I: W = 100 is the right default for fast faults, and DiskHog
/// needs the long window.
#[test]
fn lookback_window_optimum_matches_the_paper() {
    let fchain = FChain::default();
    // NetHog: W=100 at least as good as W=500.
    let short = campaign(AppKind::Rubis, FaultKind::NetHog, 9000, 100).evaluate(&[&fchain]);
    let long = campaign(AppKind::Rubis, FaultKind::NetHog, 9000, 500).evaluate(&[&fchain]);
    assert!(
        f1(&short[0].counts) >= f1(&long[0].counts),
        "nethog: W=100 {} should beat W=500 {}",
        short[0].counts,
        long[0].counts
    );
    // DiskHog: W=500 recall strictly better than W=100.
    let short =
        campaign(AppKind::Hadoop, FaultKind::ConcurrentDiskHog, 9100, 100).evaluate(&[&fchain]);
    let long =
        campaign(AppKind::Hadoop, FaultKind::ConcurrentDiskHog, 9100, 500).evaluate(&[&fchain]);
    assert!(
        long[0].counts.recall() >= short[0].counts.recall(),
        "diskhog: W=500 {} should not lose recall to W=100 {}",
        long[0].counts,
        short[0].counts
    );
}

/// §II.C: on a workload surge FChain mostly blames nobody, and strictly
/// fewer components than PAL does.
#[test]
fn workload_surges_are_not_blamed_on_components() {
    let c = campaign(AppKind::Rubis, FaultKind::WorkloadSurge, 9200, 100);
    let fchain = FChain::default();
    let pal = fchain::baselines::Pal::default();
    let results = c.evaluate(&[&fchain, &pal]);
    assert!(
        results[0].counts.fp < results[1].counts.fp,
        "FChain {} must blame fewer components than PAL {}",
        results[0].counts,
        results[1].counts
    );
}

/// §III.B / Fig. 5–7, as golden data: FChain against all six baseline
/// schemes on the standard campaign seeds, with the exact expected counts
/// checked into `tests/golden/paper_claims.json`.
///
/// Two layers of protection:
/// - [`golden::fchain_beats_all_six_baselines`] asserts the paper's
///   *ordering* claim from live results — FChain strictly beats every
///   baseline on both precision and recall aggregated over the table.
///   (A specialist baseline may win an individual case, exactly as in
///   Fig. 5–7: e.g. NetMedic on single-anomaly MemLeak runs.)
/// - [`golden::metrics_match_the_golden_fixture`] pins the *exact* values
///   so a refactor that shifts any tp/fp/fn anywhere fails loudly.
///
/// Regenerate the fixture after an intentional behaviour change with
/// `FCHAIN_REGEN_GOLDEN=1 cargo test -p fchain --test paper_claims`.
mod golden {
    use super::*;
    use fchain::baselines::{DependencyScheme, HistogramScheme, NetMedic, Pal, TopologyScheme};
    use fchain::core::Localizer;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    const GOLDEN_PATH: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/paper_claims.json"
    );
    const REGEN_VAR: &str = "FCHAIN_REGEN_GOLDEN";

    /// The standard campaign seeds: the CLI's default base seed (1000),
    /// one representative fault per application class plus the
    /// cross-application MemLeak, at suite scale (6 runs).
    const CASES: &[(&str, AppKind, FaultKind, u64, u64)] = &[
        (
            "rubis_memleak",
            AppKind::Rubis,
            FaultKind::MemLeak,
            1000,
            100,
        ),
        ("rubis_cpuhog", AppKind::Rubis, FaultKind::CpuHog, 1000, 100),
        ("rubis_nethog", AppKind::Rubis, FaultKind::NetHog, 1000, 100),
        ("rubis_lbbug", AppKind::Rubis, FaultKind::LbBug, 1000, 100),
        (
            "rubis_offloadbug",
            AppKind::Rubis,
            FaultKind::OffloadBug,
            1000,
            100,
        ),
        (
            "systems_memleak",
            AppKind::SystemS,
            FaultKind::MemLeak,
            1000,
            100,
        ),
        (
            "systems_cpuhog",
            AppKind::SystemS,
            FaultKind::CpuHog,
            1000,
            100,
        ),
        (
            "systems_bottleneck",
            AppKind::SystemS,
            FaultKind::Bottleneck,
            1000,
            100,
        ),
        (
            "hadoop_conc_memleak",
            AppKind::Hadoop,
            FaultKind::ConcurrentMemLeak,
            1000,
            100,
        ),
        (
            "hadoop_conc_cpuhog",
            AppKind::Hadoop,
            FaultKind::ConcurrentCpuHog,
            1000,
            100,
        ),
    ];

    /// One scheme's expected score on one case. `precision`/`recall` are
    /// redundant with the counts — they are kept in the fixture for human
    /// reviewers; equality is asserted on the integer counts only.
    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct GoldenMetrics {
        tp: u64,
        fp: u64,
        fn_: u64,
        precision: f64,
        recall: f64,
    }

    impl From<Counts> for GoldenMetrics {
        fn from(c: Counts) -> Self {
            GoldenMetrics {
                tp: c.tp,
                fp: c.fp,
                fn_: c.fn_,
                precision: c.precision(),
                recall: c.recall(),
            }
        }
    }

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct GoldenCase {
        app: String,
        fault: String,
        seed: u64,
        runs: usize,
        lookback: u64,
        schemes: BTreeMap<String, GoldenMetrics>,
    }

    /// Evaluates every case against FChain and all six baselines, with
    /// the `fchain compare` parameterization (histogram threshold 0.2,
    /// NetMedic delta 0.1, the paper's middle fixed threshold 1.0σ).
    /// Computed once per test binary — both golden tests read it.
    fn evaluate_cases() -> &'static BTreeMap<String, GoldenCase> {
        static CACHE: std::sync::OnceLock<BTreeMap<String, GoldenCase>> =
            std::sync::OnceLock::new();
        CACHE.get_or_init(evaluate_cases_uncached)
    }

    fn evaluate_cases_uncached() -> BTreeMap<String, GoldenCase> {
        let fchain = FChain::default();
        let histogram = HistogramScheme::new(0.2);
        let netmedic = NetMedic::new(0.1);
        let topology = TopologyScheme::default();
        let dependency = DependencyScheme::default();
        let pal = Pal::default();
        let fixed = FixedFiltering::new(1.0);
        let schemes: Vec<&(dyn Localizer + Sync)> = vec![
            &fchain,
            &histogram,
            &netmedic,
            &topology,
            &dependency,
            &pal,
            &fixed,
        ];
        CASES
            .iter()
            .map(|&(name, app, fault, seed, lookback)| {
                let c = campaign(app, fault, seed, lookback);
                let results = c.evaluate(&schemes);
                let golden = GoldenCase {
                    app: format!("{app:?}"),
                    fault: format!("{fault:?}"),
                    seed,
                    runs: c.runs,
                    lookback,
                    schemes: results
                        .into_iter()
                        .map(|r| (r.scheme, GoldenMetrics::from(r.counts)))
                        .collect(),
                };
                (name.to_string(), golden)
            })
            .collect()
    }

    const BASELINES: [&str; 6] = [
        "Histogram",
        "NetMedic",
        "Topology",
        "Dependency",
        "PAL",
        "Fixed-Filtering",
    ];

    #[test]
    fn fchain_beats_all_six_baselines() {
        let cases = evaluate_cases();
        let mut totals: BTreeMap<&str, Counts> = BTreeMap::new();
        for case in cases.values() {
            for (scheme, m) in &case.schemes {
                let slot = totals.entry(scheme_key(scheme)).or_default();
                slot.tp += m.tp;
                slot.fp += m.fp;
                slot.fn_ += m.fn_;
            }
        }
        // Aggregate: strict dominance on both axes, the paper's Fig. 5–7
        // claim ("FChain achieves significantly higher precision ... and
        // recall than the other schemes").
        let f = totals["FChain"];
        for b in BASELINES {
            let m = totals[b];
            assert!(
                f.precision() > m.precision(),
                "aggregate precision: FChain {f} must strictly beat {b} {m}"
            );
            assert!(
                f.recall() > m.recall(),
                "aggregate recall: FChain {f} must strictly beat {b} {m}"
            );
        }
    }

    /// Maps an owned scheme name onto the static key used in `totals`.
    fn scheme_key(name: &str) -> &'static str {
        [
            "FChain",
            "Histogram",
            "NetMedic",
            "Topology",
            "Dependency",
            "PAL",
            "Fixed-Filtering",
        ]
        .into_iter()
        .find(|k| *k == name)
        .unwrap_or_else(|| panic!("unknown scheme {name:?}"))
    }

    #[test]
    fn metrics_match_the_golden_fixture() {
        let actual = evaluate_cases();
        if std::env::var_os(REGEN_VAR).is_some() {
            let rendered = serde_json::to_string_pretty(&actual).expect("golden data serializes");
            std::fs::write(GOLDEN_PATH, rendered + "\n").expect("write golden fixture");
            eprintln!("regenerated {GOLDEN_PATH}");
            return;
        }
        let raw = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
            panic!("cannot read {GOLDEN_PATH}: {e}; run with {REGEN_VAR}=1 to create it")
        });
        let expected: BTreeMap<String, GoldenCase> =
            serde_json::from_str(&raw).expect("golden fixture parses");
        assert_eq!(
            expected.keys().collect::<Vec<_>>(),
            actual.keys().collect::<Vec<_>>(),
            "case set changed; rerun with {REGEN_VAR}=1 if intended"
        );
        for (name, exp) in &expected {
            let act = &actual[name];
            for (scheme, e) in &exp.schemes {
                let a = act
                    .schemes
                    .get(scheme)
                    .unwrap_or_else(|| panic!("{name}: scheme {scheme} missing from live results"));
                assert_eq!(
                    (a.tp, a.fp, a.fn_),
                    (e.tp, e.fp, e.fn_),
                    "{name}/{scheme}: counts drifted from the golden fixture \
                     (tp, fp, fn); rerun with {REGEN_VAR}=1 if the change is \
                     intentional"
                );
            }
        }
    }
}

/// The overhead claim (§III.G): diagnosing from warm daemons is orders of
/// magnitude cheaper than one second of wall clock per component, i.e.
/// cheap enough for online use.
#[test]
fn warm_diagnosis_is_fast() {
    use fchain::core::master::Master;
    use fchain::core::slave::{MetricSample, SlaveDaemon};
    use fchain::metrics::{ComponentId, MetricKind};
    use std::sync::Arc;

    let slave = Arc::new(SlaveDaemon::new(FChainConfig::default()));
    for t in 0..1200u64 {
        for c in 0..8u32 {
            for kind in MetricKind::ALL {
                let normal = 40.0 + ((t * (kind.index() as u64 + 2 + c as u64)) % 5) as f64;
                let value = if c == 3 && kind == MetricKind::Cpu && t >= 1100 {
                    normal + 50.0
                } else {
                    normal
                };
                slave.ingest(MetricSample {
                    tick: t,
                    component: ComponentId(c),
                    kind,
                    value,
                });
            }
        }
    }
    let mut master = Master::new(FChainConfig::default());
    master.register_slave(slave);
    let start = std::time::Instant::now();
    let report = master.on_violation(1190);
    let elapsed = start.elapsed();
    assert_eq!(report.pinpointed, vec![ComponentId(3)]);
    assert!(
        elapsed.as_millis() < 2000,
        "warm 8-component diagnosis took {elapsed:?}"
    );
}
