//! The paper's headline claims as executable assertions, at reduced scale
//! (5–6 runs per campaign) so the suite stays fast. The full-scale
//! versions live in the bench targets.

use fchain::baselines::FixedFiltering;
use fchain::core::{FChain, FChainConfig};
use fchain::eval::{Campaign, Counts, OracleProbe};
use fchain::sim::{AppKind, FaultKind};

fn campaign(app: AppKind, fault: FaultKind, seed: u64, lookback: u64) -> Campaign {
    Campaign {
        app,
        fault,
        runs: 6,
        base_seed: seed,
        duration: 3600,
        lookback,
    }
}

fn f1(c: &Counts) -> f64 {
    let (p, r) = (c.precision(), c.recall());
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// §III.D / Fig. 11: online validation removes false alarms on the
/// hardest fault and never manufactures recall.
#[test]
fn validation_raises_bottleneck_precision() {
    let c = campaign(AppKind::SystemS, FaultKind::Bottleneck, 8800, 100);
    let fchain = FChain::default();
    let plain = c.evaluate(&[&fchain]);
    let validated = c.evaluate_with(&[&fchain], |_s, case, run| {
        let mut probe = OracleProbe::new(&run.oracle);
        FChain::default()
            .diagnose_validated(case, &mut probe)
            .pinpointed
    });
    let (p, v) = (plain[0].counts, validated[0].counts);
    assert!(
        v.precision() > p.precision(),
        "validation must raise precision: {p} -> {v}"
    );
    assert!(v.fp < p.fp, "validation must remove false positives");
    assert!(
        v.recall() <= p.recall() + 1e-9,
        "validation cannot invent recall"
    );
}

/// Fig. 12: FChain's burst-adaptive threshold beats every fixed threshold
/// on the LBBug case.
#[test]
fn burst_adaptive_threshold_beats_fixed_thresholds() {
    let c = campaign(AppKind::Rubis, FaultKind::LbBug, 8900, 100);
    let fchain = FChain::default();
    let f02 = FixedFiltering::new(0.2);
    let f1s = FixedFiltering::new(1.0);
    let f4 = FixedFiltering::new(4.0);
    let results = c.evaluate(&[&fchain, &f02, &f1s, &f4]);
    let fchain_f1 = f1(&results[0].counts);
    for r in &results[1..] {
        assert!(
            fchain_f1 >= f1(&r.counts),
            "FChain ({}) must dominate {} ({})",
            results[0].counts,
            r.scheme,
            r.counts
        );
    }
}

/// Table I: W = 100 is the right default for fast faults, and DiskHog
/// needs the long window.
#[test]
fn lookback_window_optimum_matches_the_paper() {
    let fchain = FChain::default();
    // NetHog: W=100 at least as good as W=500.
    let short = campaign(AppKind::Rubis, FaultKind::NetHog, 9000, 100).evaluate(&[&fchain]);
    let long = campaign(AppKind::Rubis, FaultKind::NetHog, 9000, 500).evaluate(&[&fchain]);
    assert!(
        f1(&short[0].counts) >= f1(&long[0].counts),
        "nethog: W=100 {} should beat W=500 {}",
        short[0].counts,
        long[0].counts
    );
    // DiskHog: W=500 recall strictly better than W=100.
    let short =
        campaign(AppKind::Hadoop, FaultKind::ConcurrentDiskHog, 9100, 100).evaluate(&[&fchain]);
    let long =
        campaign(AppKind::Hadoop, FaultKind::ConcurrentDiskHog, 9100, 500).evaluate(&[&fchain]);
    assert!(
        long[0].counts.recall() >= short[0].counts.recall(),
        "diskhog: W=500 {} should not lose recall to W=100 {}",
        long[0].counts,
        short[0].counts
    );
}

/// §II.C: on a workload surge FChain mostly blames nobody, and strictly
/// fewer components than PAL does.
#[test]
fn workload_surges_are_not_blamed_on_components() {
    let c = campaign(AppKind::Rubis, FaultKind::WorkloadSurge, 9200, 100);
    let fchain = FChain::default();
    let pal = fchain::baselines::Pal::default();
    let results = c.evaluate(&[&fchain, &pal]);
    assert!(
        results[0].counts.fp < results[1].counts.fp,
        "FChain {} must blame fewer components than PAL {}",
        results[0].counts,
        results[1].counts
    );
}

/// The overhead claim (§III.G): diagnosing from warm daemons is orders of
/// magnitude cheaper than one second of wall clock per component, i.e.
/// cheap enough for online use.
#[test]
fn warm_diagnosis_is_fast() {
    use fchain::core::master::Master;
    use fchain::core::slave::{MetricSample, SlaveDaemon};
    use fchain::metrics::{ComponentId, MetricKind};
    use std::sync::Arc;

    let slave = Arc::new(SlaveDaemon::new(FChainConfig::default()));
    for t in 0..1200u64 {
        for c in 0..8u32 {
            for kind in MetricKind::ALL {
                let normal = 40.0 + ((t * (kind.index() as u64 + 2 + c as u64)) % 5) as f64;
                let value = if c == 3 && kind == MetricKind::Cpu && t >= 1100 {
                    normal + 50.0
                } else {
                    normal
                };
                slave.ingest(MetricSample {
                    tick: t,
                    component: ComponentId(c),
                    kind,
                    value,
                });
            }
        }
    }
    let mut master = Master::new(FChainConfig::default());
    master.register_slave(slave);
    let start = std::time::Instant::now();
    let report = master.on_violation(1190);
    let elapsed = start.elapsed();
    assert_eq!(report.pinpointed, vec![ComponentId(3)]);
    assert!(
        elapsed.as_millis() < 2000,
        "warm 8-component diagnosis took {elapsed:?}"
    );
}
