//! Offline-vendored replacement for the subset of `rand` 0.8 used by this
//! workspace: seedable deterministic generators (`SmallRng`, `StdRng`),
//! `Rng::gen`/`gen_range`, and `SliceRandom::shuffle`.
//!
//! The generators are xoshiro256-family PRNGs seeded through splitmix64.
//! Streams differ from the real `rand` crate — all consumers treat seeds
//! as opaque determinism handles, not as references to published streams.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample of the "standard" distribution of `T` (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution.
pub trait Standard: Sized {
    /// Samples the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <f64 as Standard>::sample_standard(rng) as $t;
                let v = self.start + (self.end - self.start) * unit;
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <f64 as Standard>::sample_standard(rng) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seed_state(seed: u64, stream: u64) -> [u64; 4] {
    let mut sm = seed ^ stream;
    let mut s = [0u64; 4];
    for slot in &mut s {
        *slot = splitmix64(&mut sm);
    }
    // xoshiro must not start from the all-zero state.
    if s == [0, 0, 0, 0] {
        s[0] = 0x9e37_79b9_7f4a_7c15;
    }
    s
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// Named generators.
pub mod rngs {
    use super::*;
    use std::sync::OnceLock;

    /// A small, fast deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng {
                s: seed_state(state, 0),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }
    }

    /// The xoshiro256 state transition (sans output scrambler) as a
    /// pure function of the 256-bit state. Every operation is an XOR,
    /// shift or rotate, so the map is linear over GF(2) — which is what
    /// makes [`SmallRng::advance`] possible.
    fn xoshiro_step(mut s: [u64; 4]) -> [u64; 4] {
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        s
    }

    /// A 256×256 bit-matrix over GF(2): row `i` is the image of basis
    /// state-bit `i` under some power of the xoshiro transition.
    type JumpMatrix = Vec<[u64; 4]>;

    /// `apply(m, v)` = `m · v`: XOR of the rows selected by the set bits
    /// of `v`.
    fn apply(m: &JumpMatrix, v: [u64; 4]) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (word, &bits) in v.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let row = m[word * 64 + bit];
                for (o, r) in out.iter_mut().zip(row) {
                    *o ^= r;
                }
            }
        }
        out
    }

    /// Matrices for the transition to the power `2^j`, `j = 0..64`,
    /// built once on first use (repeated squaring of the one-step
    /// matrix).
    fn jump_matrices() -> &'static [JumpMatrix; 64] {
        static MATRICES: OnceLock<Box<[JumpMatrix; 64]>> = OnceLock::new();
        MATRICES.get_or_init(|| {
            let mut mats: Vec<JumpMatrix> = Vec::with_capacity(64);
            let step: JumpMatrix = (0..256)
                .map(|i| {
                    let mut basis = [0u64; 4];
                    basis[i / 64] = 1u64 << (i % 64);
                    xoshiro_step(basis)
                })
                .collect();
            mats.push(step);
            for j in 1..64 {
                let prev = &mats[j - 1];
                let sq: JumpMatrix = prev.iter().map(|&row| apply(prev, row)).collect();
                mats.push(sq);
            }
            let array: [JumpMatrix; 64] = mats.try_into().expect("64 matrices");
            Box::new(array)
        })
    }

    impl SmallRng {
        /// Advances the generator by exactly `n` steps: afterwards the
        /// state (and therefore every future draw) is identical to
        /// having called [`RngCore::next_u64`] `n` times and discarded
        /// the results.
        ///
        /// Small jumps spin the generator directly; large ones apply
        /// precomputed GF(2) jump matrices, so the cost is
        /// `O(log n)` matrix-vector products instead of `O(n)` draws.
        /// Used by deterministic consumers that can prove a stretch of
        /// draws cannot affect their result but must keep the stream
        /// position bit-exact.
        pub fn advance(&mut self, n: u64) {
            // Below ~2k steps the plain spin is cheaper than ~11+
            // matrix applications.
            if n < 2048 {
                for _ in 0..n {
                    self.next_u64();
                }
                return;
            }
            let mats = jump_matrices();
            let mut n = n;
            while n != 0 {
                let j = n.trailing_zeros() as usize;
                n &= n - 1;
                self.s = apply(&mats[j], self.s);
            }
        }
    }

    /// The "standard" generator (xoshiro256**, distinct stream from
    /// [`SmallRng`] for the same seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                s: seed_state(state, 0x2545_f491_4f6c_dd1d),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::*;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic given the generator state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(42);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let i = rng.gen_range(5u32..9);
            assert!((5..9).contains(&i));
            let j = rng.gen_range(0usize..=3);
            assert!(j <= 3);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn advance_matches_spinning_the_generator() {
        // Cross the spin/matrix threshold in both directions.
        for k in [0u64, 1, 2, 63, 64, 100, 2047, 2048, 5000, 123_457] {
            let mut jumped = SmallRng::seed_from_u64(99);
            let mut spun = SmallRng::seed_from_u64(99);
            jumped.advance(k);
            for _ in 0..k {
                spun.next_u64();
            }
            assert_eq!(
                (0..4).map(|_| jumped.next_u64()).collect::<Vec<_>>(),
                (0..4).map(|_| spun.next_u64()).collect::<Vec<_>>(),
                "advance({k}) diverged from {k} discarded draws"
            );
        }
    }

    #[test]
    fn advance_composes() {
        let mut split = SmallRng::seed_from_u64(7);
        split.advance(40_000);
        split.advance(11_111);
        let mut whole = SmallRng::seed_from_u64(7);
        whole.advance(51_111);
        assert_eq!(split.next_u64(), whole.next_u64());
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted);
    }
}
