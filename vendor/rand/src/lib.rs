//! Offline-vendored replacement for the subset of `rand` 0.8 used by this
//! workspace: seedable deterministic generators (`SmallRng`, `StdRng`),
//! `Rng::gen`/`gen_range`, and `SliceRandom::shuffle`.
//!
//! The generators are xoshiro256-family PRNGs seeded through splitmix64.
//! Streams differ from the real `rand` crate — all consumers treat seeds
//! as opaque determinism handles, not as references to published streams.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A sample of the "standard" distribution of `T` (`f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution.
pub trait Standard: Sized {
    /// Samples the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <f64 as Standard>::sample_standard(rng) as $t;
                let v = self.start + (self.end - self.start) * unit;
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <f64 as Standard>::sample_standard(rng) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}
impl_float_range!(f32, f64);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seed_state(seed: u64, stream: u64) -> [u64; 4] {
    let mut sm = seed ^ stream;
    let mut s = [0u64; 4];
    for slot in &mut s {
        *slot = splitmix64(&mut sm);
    }
    // xoshiro must not start from the all-zero state.
    if s == [0, 0, 0, 0] {
        s[0] = 0x9e37_79b9_7f4a_7c15;
    }
    s
}

#[inline]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

/// Named generators.
pub mod rngs {
    use super::*;

    /// A small, fast deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng {
                s: seed_state(state, 0),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }
    }

    /// The "standard" generator (xoshiro256**, distinct stream from
    /// [`SmallRng`] for the same seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                s: seed_state(state, 0x2545_f491_4f6c_dd1d),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = rotl(s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = rotl(s[3], 45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::*;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle, deterministic given the generator state.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(42);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let i = rng.gen_range(5u32..9);
            assert!((5..9).contains(&i));
            let j = rng.gen_range(0usize..=3);
            assert!(j <= 3);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted);
    }
}
