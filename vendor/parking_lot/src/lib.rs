//! Offline-vendored `parking_lot`-compatible locks, backed by `std::sync`
//! with poisoning ignored (panics while holding a lock do not poison it,
//! matching parking_lot semantics).

use std::fmt;
use std::sync::PoisonError;

/// A mutex whose `lock()` returns the guard directly (no `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: guard }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
