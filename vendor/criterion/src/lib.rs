//! Offline-vendored minimal benchmark harness compatible with the subset
//! of `criterion` this workspace uses: `Criterion::bench_function` +
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`, and `black_box`.
//!
//! Measurements are real wall-clock timings (warmup, calibration to a
//! per-sample budget, then `sample_size` samples reported as
//! min/median/max per iteration). Summaries are kept on the `Criterion`
//! instance so custom `main`s can post-process them (e.g. JSON dumps).

use std::time::{Duration, Instant};

/// Re-exported so benches can `use criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished benchmark's per-iteration timing summary.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark id as given to [`Criterion::bench_function`].
    pub id: String,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Median sample, nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean over samples, nanoseconds per iteration.
    pub mean_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Iterations per sample the calibration settled on.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    summaries: Vec<Summary>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            summaries: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warmup budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Command-line configuration is not supported; kept for API
    /// compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warmup + calibration: grow the per-sample iteration count until
        // one sample costs at least ~1/sample_size of the budget (so all
        // samples together roughly fit the measurement budget).
        let per_sample = self.measurement_time / self.sample_size as u32;
        let warmup_start = Instant::now();
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= per_sample
                || warmup_start.elapsed() >= self.warm_up_time
                || b.iters >= 1 << 40
            {
                break;
            }
            // Aim directly at the per-sample budget instead of doubling
            // blindly, with a 2x cap to stay robust against noise.
            let scale = if b.elapsed.as_nanos() == 0 {
                2.0
            } else {
                (per_sample.as_nanos() as f64 / b.elapsed.as_nanos() as f64).clamp(1.1, 2.0)
            };
            b.iters = ((b.iters as f64 * scale).ceil() as u64).max(b.iters + 1);
        }

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter_ns[0];
        let max = *per_iter_ns.last().expect("sample_size >= 2");
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;

        println!(
            "{id:<44} time: [{} {} {}]",
            format_ns(min),
            format_ns(median),
            format_ns(max)
        );
        self.summaries.push(Summary {
            id: id.to_string(),
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
            max_ns: max,
            iters_per_sample: b.iters,
            samples: per_iter_ns.len(),
        });
        self
    }

    /// Summaries of every benchmark run so far.
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }

    /// Prints nothing extra; kept for API compatibility.
    pub fn final_summary(&self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Times the routine under measurement.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Defines a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
            c.final_summary();
            c
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(let _ = $group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let s = &c.summaries()[0];
        assert_eq!(s.id, "noop_sum");
        assert!(s.median_ns > 0.0);
    }
}
