//! Offline-vendored minimal subset of the `bytes` crate: `Bytes`,
//! `BytesMut`, and big-endian `Buf`/`BufMut` cursors.

use std::ops::{Deref, DerefMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps an owned byte vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Big-endian write cursor.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Big-endian read cursor that advances past consumed bytes.
///
/// # Panics
///
/// The `get_*` methods panic when fewer bytes remain than requested,
/// matching the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies out `dst.len()` bytes and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_be_integers() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xdead_beef);
        buf.put_u64(42);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u32(), 0xdead_beef);
        assert_eq!(cursor.get_u64(), 42);
        assert_eq!(cursor.remaining(), 0);
    }
}
