//! Minimal, offline-vendored JSON codec compatible with the subset of
//! `serde_json` this workspace uses: `to_string`, `to_string_pretty`,
//! `from_str`, the [`json!`] macro, and a [`Value`] tree.
//!
//! [`Value`] is the vendored serde's [`Content`](serde::Content) tree, so
//! anything `Serialize` converts losslessly. Floats print via Rust's
//! shortest-roundtrip formatter (the `float_roundtrip` behavior of real
//! serde_json); non-finite floats serialize as `null`.

use serde::{Content, Serialize};
use std::fmt;

/// A JSON value (the vendored serde content tree).
pub type Value = Content;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Infallible by-reference conversion used by the [`json!`] macro.
#[doc(hidden)]
pub fn __to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Deserializes a typed value from a [`Value`].
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::deserialize(&value).map_err(Error::from)
}

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), None, 0)?;
    Ok(out)
}

/// Serializes a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.serialize(), Some(2), 0)?;
    Ok(out)
}

/// Deserializes a typed value from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Builds a [`Value`] from JSON-like object/array literals. Values are
/// arbitrary `Serialize` expressions (taken by reference, like real
/// serde_json's macro); nested containers are written as nested `json!`
/// calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::__json_array!(@elems [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::__json_object!(@entries [] $($tt)*) };
    ($other:expr) => { $crate::__to_value(&$other) };
}

/// Object muncher: splits `key : value` pairs on top-level commas, then
/// re-dispatches each value through [`json!`] (so `null`, nested literals
/// and arbitrary expressions all work).
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    (@entries [$($entries:tt)*]) => {
        $crate::Value::Map(vec![$($entries)*])
    };
    (@entries [$($entries:tt)*] $key:tt : $($rest:tt)*) => {
        $crate::__json_object!(@value [$($entries)*] $key [] $($rest)*)
    };
    (@value [$($entries:tt)*] $key:tt [$($val:tt)+] , $($rest:tt)*) => {
        $crate::__json_object!(@entries [
            $($entries)*
            ($crate::Value::Str(::std::string::String::from($key)), $crate::json!($($val)+)),
        ] $($rest)*)
    };
    (@value [$($entries:tt)*] $key:tt [$($val:tt)+]) => {
        $crate::__json_object!(@entries [
            $($entries)*
            ($crate::Value::Str(::std::string::String::from($key)), $crate::json!($($val)+)),
        ])
    };
    (@value [$($entries:tt)*] $key:tt [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_object!(@value [$($entries)*] $key [$($val)* $next] $($rest)*)
    };
}

/// Array muncher: splits elements on top-level commas and re-dispatches
/// each through [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    (@elems [$($elems:tt)*]) => {
        $crate::Value::Seq(vec![$($elems)*])
    };
    (@elems [$($elems:tt)*] $($rest:tt)+) => {
        $crate::__json_array!(@value [$($elems)*] [] $($rest)+)
    };
    (@value [$($elems:tt)*] [$($val:tt)+] , $($rest:tt)*) => {
        $crate::__json_array!(@elems [$($elems)* $crate::json!($($val)+),] $($rest)*)
    };
    (@value [$($elems:tt)*] [$($val:tt)+]) => {
        $crate::__json_array!(@elems [$($elems)* $crate::json!($($val)+),])
    };
    (@value [$($elems:tt)*] [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::__json_array!(@value [$($elems)*] [$($val)* $next] $($rest)*)
    };
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_content(
    out: &mut String,
    c: &Content,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_content(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_key(out, k)?;
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// JSON object keys must be strings; integer keys (e.g. `BTreeMap<u32, _>`)
/// are stringified like real serde_json does.
fn write_key(out: &mut String, key: &Content) -> Result<(), Error> {
    match key {
        Content::Str(s) => {
            write_string(out, s);
            Ok(())
        }
        Content::U64(v) => {
            write_string(out, &v.to_string());
            Ok(())
        }
        Content::I64(v) => {
            write_string(out, &v.to_string());
            Ok(())
        }
        other => Err(Error::new(format!(
            "map key must be a string, got {other:?}"
        ))),
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // Rust prints 1.0f64 as "1"; keep serde_json's "1.0" so the value
    // visibly stays a float.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Content, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    entries.push((Content::Str(key), value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = format!("-{digits}").parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just stepped
                    // past; multi-byte sequences advance further.
                    let s = &self.bytes[self.pos - 1..];
                    let text = std::str::from_utf8(&s[..s.len().min(4)])
                        .or_else(|e| {
                            if e.valid_up_to() > 0 {
                                std::str::from_utf8(&s[..e.valid_up_to()])
                            } else {
                                Err(e)
                            }
                        })
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let ch = text
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("invalid utf-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        let v: f64 = from_str("1.5").unwrap();
        assert_eq!(v, 1.5);
    }

    #[test]
    fn roundtrip_collections() {
        let xs = vec![1u64, 2, 3];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[1,2,3]");
        let back: Vec<u64> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u64, "b": [json!(2u64)], "c": null });
        let s = to_string(&v).unwrap();
        assert_eq!(s, "{\"a\":1,\"b\":[2],\"c\":null}");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let s: String = from_str("\"\\u0041\\n\\u00e9\"").unwrap();
        assert_eq!(s, "A\né");
    }
}
