//! Minimal, offline-vendored replacement for the subset of `serde` this
//! workspace uses.
//!
//! The public surface mirrors real serde closely enough that downstream
//! crates keep writing `#[derive(Serialize, Deserialize)]` and bounds like
//! `serde::Serialize + serde::de::DeserializeOwned`, but the data model is
//! a single self-describing [`Content`] tree instead of the
//! visitor/Serializer machinery. `serde_json` (also vendored) renders and
//! parses that tree.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also used for `None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key/value map (keys are usually `Str`).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with an arbitrary message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Content) -> Self {
        let kind = match found {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::U64(_) | Content::I64(_) => "an integer",
            Content::F64(_) => "a number",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        };
        DeError::custom(format!("expected {what}, found {kind}"))
    }

    /// Unknown enum variant helper.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError::custom(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the content tree.
    fn serialize(&self) -> Content;
}

/// A type that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserializes a value from the content tree.
    fn deserialize(content: &Content) -> Result<Self, DeError>;
}

/// `serde::de` compatibility: `DeserializeOwned` is the usual bound for
/// "deserialize from any borrowed input"; with the tree model every
/// deserialize is owned, so it is a plain re-export.
pub mod de {
    pub use crate::DeError as Error;
    pub use crate::Deserialize as DeserializeOwned;
}

/// `serde::ser` compatibility namespace.
pub mod ser {
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Derive-macro support helpers (not part of the public serde API).
// ---------------------------------------------------------------------------

/// Expects a map, with a type name for the error message.
#[doc(hidden)]
pub fn __expect_map<'a>(c: &'a Content, what: &str) -> Result<&'a [(Content, Content)], DeError> {
    c.as_map().ok_or_else(|| DeError::expected(what, c))
}

/// Expects a sequence, with a type name for the error message.
#[doc(hidden)]
pub fn __expect_seq<'a>(c: &'a Content, what: &str) -> Result<&'a [Content], DeError> {
    c.as_seq().ok_or_else(|| DeError::expected(what, c))
}

/// Looks up and deserializes one struct field from map entries.
#[doc(hidden)]
pub fn __get_field<T: Deserialize>(
    entries: &[(Content, Content)],
    key: &str,
    ty: &str,
) -> Result<T, DeError> {
    for (k, v) in entries {
        if k.as_str() == Some(key) {
            return T::deserialize(v);
        }
    }
    // Missing field: allow `Option`-like types to default from null.
    match T::deserialize(&Content::Null) {
        Ok(v) => Ok(v),
        Err(_) => Err(DeError::custom(format!("missing field `{key}` in {ty}"))),
    }
}

// ---------------------------------------------------------------------------
// Impls for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| DeError::custom(format!("invalid integer key `{s}`")))?,
                    other => return Err(DeError::expected("an unsigned integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::custom(format!("integer {v} out of range")))?,
                    Content::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| DeError::custom(format!("invalid integer key `{s}`")))?,
                    other => return Err(DeError::expected("an integer", other)),
                };
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("integer {v} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            // Non-finite floats serialize as null (JSON has no NaN/inf).
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::expected("a number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        f64::deserialize(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("a boolean", other)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let s = String::deserialize(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Content {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        T::deserialize(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

fn seq_of<'a, I: IntoIterator<Item = &'a T>, T: Serialize + 'a>(it: I) -> Content {
    Content::Seq(it.into_iter().map(Serialize::serialize).collect())
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Content {
        seq_of(self)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Content {
        seq_of(self)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        let seq = __expect_seq(c, "an array")?;
        if seq.len() != N {
            return Err(DeError::custom(format!(
                "expected an array of length {N}, found {}",
                seq.len()
            )));
        }
        let items = seq
            .iter()
            .map(T::deserialize)
            .collect::<Result<Vec<_>, _>>()?;
        items
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Content {
        seq_of(self)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        __expect_seq(c, "a sequence")?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Content {
        seq_of(self)
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        __expect_seq(c, "a sequence")?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Content {
        seq_of(self)
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        __expect_seq(c, "a sequence")?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.serialize(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        __expect_map(c, "a map")?
            .iter()
            .map(|(k, v)| Ok((K::deserialize(k)?, V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(c: &Content) -> Result<Self, DeError> {
                let seq = __expect_seq(c, "a tuple")?;
                if seq.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected a tuple of length {}, found {}",
                        $len,
                        seq.len()
                    )));
                }
                Ok(($($t::deserialize(&seq[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Content {
    fn serialize(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}
