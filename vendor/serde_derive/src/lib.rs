//! `#[derive(Serialize, Deserialize)]` for the vendored serde core.
//!
//! Implemented without syn/quote (this workspace builds fully offline):
//! the input `TokenStream` is walked by hand to extract the type's shape
//! (named/tuple/unit struct, or enum of unit/tuple/struct variants), and
//! the impl is emitted as source text parsed back into a `TokenStream`.
//!
//! Unsupported on purpose: generic types and `#[serde(...)]` attributes —
//! the workspace uses neither.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.shape {
        Shape::Struct(fields) => serialize_fields(&input.name, "self.", fields, None),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{n}::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\")),\n",
                            n = input.name,
                            v = vname
                        ));
                    }
                    Fields::Tuple(len) => {
                        let binds: Vec<String> = (0..*len).map(|i| format!("__f{i}")).collect();
                        let inner = variant_payload(&binds);
                        arms.push_str(&format!(
                            "{n}::{v}({b}) => ::serde::Content::Map(vec![(::serde::Content::Str(::std::string::String::from(\"{v}\")), {inner})]),\n",
                            n = input.name,
                            v = vname,
                            b = binds.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let mut entries = String::new();
                        for f in names {
                            entries.push_str(&format!(
                                "(::serde::Content::Str(::std::string::String::from(\"{f}\")), ::serde::Serialize::serialize({f})),"
                            ));
                        }
                        arms.push_str(&format!(
                            "{n}::{v} {{ {binds} }} => ::serde::Content::Map(vec![(::serde::Content::Str(::std::string::String::from(\"{v}\")), ::serde::Content::Map(vec![{entries}]))]),\n",
                            n = input.name,
                            v = vname
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}",
        name = input.name
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => deserialize_fields(name, name, fields, "__c"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                        ));
                    }
                    _ => {
                        let ctor =
                            deserialize_fields(name, &format!("{name}::{vname}"), fields, "__v");
                        data_arms.push_str(&format!("\"{vname}\" => {{ {ctor} }}\n"));
                    }
                }
            }
            format!(
                "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                     }},\n\
                     _ => {{\n\
                         let __m = ::serde::__expect_map(__c, \"{name}\")?;\n\
                         if __m.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::DeError::custom(\"expected a single-variant map for {name}\"));\n\
                         }}\n\
                         let (__k, __v) = &__m[0];\n\
                         let __k = __k.as_str().ok_or_else(|| ::serde::DeError::custom(\"expected a string variant key for {name}\"))?;\n\
                         match __k {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}

/// Serialize body for struct shapes (`prefix` is `self.` for structs).
fn serialize_fields(_name: &str, prefix: &str, fields: &Fields, _variant: Option<&str>) -> String {
    match fields {
        Fields::Unit => "::serde::Content::Null".to_string(),
        Fields::Tuple(1) => format!("::serde::Serialize::serialize(&{prefix}0)"),
        Fields::Tuple(len) => {
            let items: Vec<String> = (0..*len)
                .map(|i| format!("::serde::Serialize::serialize(&{prefix}{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let mut entries = String::new();
            for f in names {
                entries.push_str(&format!(
                    "(::serde::Content::Str(::std::string::String::from(\"{f}\")), ::serde::Serialize::serialize(&{prefix}{f})),"
                ));
            }
            format!("::serde::Content::Map(vec![{entries}])")
        }
    }
}

/// Serialize payload of an enum tuple variant from bound refs `__f0..`.
fn variant_payload(binds: &[String]) -> String {
    if binds.len() == 1 {
        format!("::serde::Serialize::serialize({})", binds[0])
    } else {
        let items: Vec<String> = binds
            .iter()
            .map(|b| format!("::serde::Serialize::serialize({b})"))
            .collect();
        format!("::serde::Content::Seq(vec![{}])", items.join(", "))
    }
}

/// Deserialize-and-construct expression for `ctor` (a struct name or
/// `Enum::Variant` path) from the content expression `src`.
fn deserialize_fields(type_name: &str, ctor: &str, fields: &Fields, src: &str) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({ctor})"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({ctor}(::serde::Deserialize::deserialize({src})?))")
        }
        Fields::Tuple(len) => {
            let items: Vec<String> = (0..*len)
                .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                .collect();
            format!(
                "{{\n\
                     let __seq = ::serde::__expect_seq({src}, \"{ctor}\")?;\n\
                     if __seq.len() != {len} {{\n\
                         return ::std::result::Result::Err(::serde::DeError::custom(\"wrong tuple arity for {ctor}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({ctor}({items}))\n\
                 }}",
                items = items.join(", ")
            )
        }
        Fields::Named(names) => {
            let mut inits = String::new();
            for f in names {
                inits.push_str(&format!(
                    "{f}: ::serde::__get_field(__fields, \"{f}\", \"{type_name}\")?,\n"
                ));
            }
            format!(
                "{{\n\
                     let __fields = ::serde::__expect_map({src}, \"{ctor}\")?;\n\
                     ::std::result::Result::Ok({ctor} {{ {inits} }})\n\
                 }}"
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Token-level parsing.
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes (incl. doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected a type name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic types are not supported by the vendored serde_derive");
    }
    let shape = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct(Fields::Unit),
            other => panic!("derive: unexpected struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("derive: unexpected enum body {other:?}"),
        },
        other => panic!("derive: `{other}` items are not supported"),
    };
    Input { name, shape }
}

/// Field names of a braced struct body (types are skipped; nested groups
/// are atomic tokens, so only `<`/`>` need depth tracking).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected a field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("derive: expected `:` after field `{name}`, got {other:?}"),
        }
        names.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

/// Arity of a tuple-struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut pending = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                pending = false;
            }
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes (incl. doc comments) before the variant name.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive: expected a variant name, got {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                iter.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                f
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Consume up to and including the variant separator (also skips
        // explicit discriminants, which never contain top-level commas).
        for tok in iter.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}
