//! Offline-vendored minimal property-testing harness compatible with the
//! subset of `proptest` this workspace uses: the `proptest!` macro with
//! `pat in strategy` arguments and `#![proptest_config(...)]`, the
//! `prop_assert!`/`prop_assert_eq!` macros, range/tuple strategies,
//! `collection::vec`, `collection::btree_set`, `option::of`, `bool::ANY`,
//! and `Strategy::prop_map`.
//!
//! Differences from real proptest: inputs are generated from a
//! per-test-deterministic RNG and failures are reported without
//! shrinking. Case counts honor `PROPTEST_CASES` like the real crate.

use rand::prelude::*;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases after applying the `PROPTEST_CASES` environment override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives input generation for one test function.
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// A runner whose stream is determined by the test name (stable
    /// across runs and platforms).
    pub fn new(_config: &ProptestConfig, test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.generate(runner))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies.
pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Sets of `element` values with a target size drawn from `size`
    /// (may fall short when the element space is nearly exhausted).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let target = runner.rng.gen_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 100 {
                out.insert(self.element.generate(runner));
                attempts += 1;
            }
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// `Some` of the inner strategy three times out of four, else `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            if runner.rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(runner))
            }
        }
    }
}

/// `bool` strategies.
pub mod bool {
    use super::*;

    /// Uniform booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            runner.rng.gen::<u64>() & 1 == 1
        }
    }
}

/// Defines property tests: zero or more `fn name(pat in strategy, ...)`
/// items, optionally preceded by `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::TestRunner::new(&config, stringify!($name));
            for case in 0..config.effective_cases() {
                let outcome: $crate::TestCaseResult = (|runner: &mut $crate::TestRunner| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), runner);)+
                    $body
                    ::std::result::Result::Ok(())
                })(&mut runner);
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.effective_cases(),
                        e
                    );
                }
            }
        }
    )*};
}

/// Skips the current case unless `cond` holds (no shrinking here, so a
/// skipped case simply counts as passed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_within_bounds(x in 3u32..17, y in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(0u8..255, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
        }

        #[test]
        fn mapped_values_transform(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
        }
    }
}
